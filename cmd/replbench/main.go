// Command replbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	replbench -experiment <name>|findings|all \
//	          [-profile smoke|quick|paper] [-short] [-seed N] [-rf 1,2,3] [-parallel N] [-shards N] [-csv] [-o results.txt] [-trace-out trace.json]
//
// The experiment names (table1, fig1, ..., spectrum) come from a single
// registry; run with an unknown name to get the current list. Sweeps fan
// their independent cells out across host CPUs (-parallel bounds the
// worker pool; 0 means one worker per CPU). -shards additionally runs
// each cell's kernel as a sharded group (see DESIGN §10). Every cell is a
// deterministic simulation whose event order is independent of both knobs,
// so the report is bit-identical whatever the parallelism or shard count.
// -seed and -csv apply uniformly to every experiment, including the geo and
// failover extensions.
//
// Each experiment prints the corresponding table or figure series in the
// same rows the paper reports, plus a findings summary comparing the
// reproduction against the paper's qualitative claims.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cloudbench/internal/core"
	"cloudbench/internal/stats"
	"cloudbench/internal/trace"
	"cloudbench/internal/ycsb"
)

// coreReadMostly adapts the read-mostly preset for the SLA search.
func coreReadMostly(records int64) ycsb.Spec { return ycsb.ReadMostly(records) }

// runContext carries the resolved options and output plumbing into each
// experiment's runner.
type runContext struct {
	o        core.Options
	w        io.Writer
	csv      bool
	findings *[]core.Finding
	rfFlag   string // raw -rf value: some experiments re-default when unset
	traceOut string
	seed     int64
	profile  string // resolved -profile name; megascale sizes its cell by it
}

// render prints a table in the format -csv selected, followed by a blank
// separator line.
func (ctx *runContext) render(t *stats.Table) {
	if ctx.csv {
		t.CSV(ctx.w)
	} else {
		t.Render(ctx.w)
	}
	fmt.Fprintln(ctx.w)
}

// experiment is one registry entry. The -experiment usage string, the
// dispatch, and the `all` order are all generated from this single list —
// adding an experiment here is the whole wiring.
type experiment struct {
	name string
	run  func(ctx *runContext) error
}

// experiments returns the registry in canonical (`all`) order.
func experiments() []experiment {
	return []experiment{
		{"table1", runTable1},
		{"fig1", runFig1},
		{"fig2", runFig2},
		{"fig3", runFig3},
		{"audit", runAudit},
		{"spectrum", runSpectrum},
		{"tracebreak", runTracebreak},
		{"ablation-a1", runAblationA1},
		{"ablation-a2", runAblationA2},
		{"ablation-a3", runAblationA3},
		{"geo", runGeo},
		{"failover", runFailover},
		{"sla", runSLA},
		{"megascale", runMegaScale},
	}
}

// experimentNames renders the registry (plus the two pseudo-experiments)
// for the usage string and the unknown-name error.
func experimentNames() string {
	var names []string
	for _, e := range experiments() {
		names = append(names, e.name)
	}
	return strings.Join(append(names, "findings", "all"), "|")
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replbench", flag.ContinueOnError)
	experimentFlag := fs.String("experiment", "all", experimentNames())
	profile := fs.String("profile", "quick", "smoke, quick, or paper scale")
	short := fs.Bool("short", false, "shorthand for -profile smoke")
	traceOut := fs.String("trace-out", "", "write Chrome trace-event JSON for one span-retaining tracebreak cell to this file")
	seed := fs.Int64("seed", 1, "simulation seed")
	parallel := fs.Int("parallel", 0, "sweep cells run concurrently (0 = one per CPU); results are bit-identical for every value")
	shards := fs.Int("shards", 0, "kernel execution shards per simulation cell (0/1 = sequential kernel); results are bit-identical for every value")
	shardWorkers := fs.Int("shard-workers", 0, "pinned worker goroutines per sharded group (0 = one per CPU); results are bit-identical for every value")
	rfList := fs.String("rf", "", "comma-separated replication factors (default 1-6)")
	noReadRepair := fs.Bool("no-read-repair", false, "disable Cassandra read repair (ablation A1 inline)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	out := fs.String("o", "", "also write the report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	registry := experiments()
	if *experimentFlag != "all" && *experimentFlag != "findings" {
		known := false
		for _, e := range registry {
			if e.name == *experimentFlag {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment %q (valid: %s)", *experimentFlag, experimentNames())
		}
	}

	if *short {
		*profile = "smoke"
	}
	var o core.Options
	switch *profile {
	case "smoke":
		o = core.SmokeOptions()
	case "quick":
		o = core.QuickOptions()
	case "paper":
		o = core.PaperOptions()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	o.Seed = *seed
	if *parallel < 0 {
		return fmt.Errorf("bad -parallel %d", *parallel)
	}
	o.Parallelism = *parallel
	if *shards < 0 {
		return fmt.Errorf("bad -shards %d", *shards)
	}
	if *shards > 0 {
		o.Shards = *shards
	}
	if *shardWorkers < 0 {
		return fmt.Errorf("bad -shard-workers %d", *shardWorkers)
	}
	if *shardWorkers > 0 {
		o.ShardWorkers = *shardWorkers
	}
	if *rfList != "" {
		var rfs []int
		for _, part := range strings.Split(*rfList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -rf entry %q", part)
			}
			rfs = append(rfs, n)
		}
		o.ReplicationFactors = rfs
	}
	if *noReadRepair {
		o.ReadRepairChance = 0
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	started := time.Now()
	var findings []core.Finding
	ctx := &runContext{
		o:        o,
		w:        w,
		csv:      *csv,
		findings: &findings,
		rfFlag:   *rfList,
		traceOut: *traceOut,
		seed:     *seed,
		profile:  *profile,
	}

	for _, e := range registry {
		if *experimentFlag != e.name && *experimentFlag != "all" {
			continue
		}
		if e.run == nil {
			continue
		}
		if err := e.run(ctx); err != nil {
			return err
		}
	}
	if len(findings) > 0 || *experimentFlag == "findings" {
		fmt.Fprintln(w, "Findings versus the paper's qualitative claims:")
		for _, f := range findings {
			fmt.Fprintln(w, " ", f)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "done in %v (wall clock)\n", time.Since(started).Round(time.Second))
	return nil
}

func runTable1(ctx *runContext) error {
	if err := core.VerifyTable1(); err != nil {
		return err
	}
	ctx.render(core.Table1())
	return nil
}

func runFig1(ctx *runContext) error {
	res, err := core.RunFig1(ctx.o)
	if err != nil {
		return err
	}
	for _, f := range res.Figures() {
		ctx.render(f.Table())
	}
	ctx.render(res.Table())
	*ctx.findings = append(*ctx.findings, core.CheckFig1(res)...)
	return nil
}

func runFig2(ctx *runContext) error {
	res, err := core.RunFig2(ctx.o)
	if err != nil {
		return err
	}
	for _, f := range res.ThroughputFigures() {
		ctx.render(f.Table())
	}
	for _, f := range res.LatencyFigures() {
		ctx.render(f.Table())
	}
	*ctx.findings = append(*ctx.findings, core.CheckFig2(res)...)
	return nil
}

func runFig3(ctx *runContext) error {
	res, err := core.RunFig3(ctx.o)
	if err != nil {
		return err
	}
	for _, f := range res.Figures() {
		ctx.render(f.Table())
	}
	*ctx.findings = append(*ctx.findings, core.CheckFig3(res)...)
	return nil
}

func runAudit(ctx *runContext) error {
	res, err := core.RunConsistencyAudit(ctx.o)
	if err != nil {
		return err
	}
	ctx.render(res.Table())
	*ctx.findings = append(*ctx.findings, core.CheckAudit(res)...)
	return nil
}

func runSpectrum(ctx *runContext) error {
	res, err := core.RunSpectrum(ctx.o)
	if err != nil {
		return err
	}
	ctx.render(res.Table())
	*ctx.findings = append(*ctx.findings, core.CheckSpectrum(ctx.o, res)...)
	return nil
}

func runTracebreak(ctx *runContext) error {
	to := ctx.o
	if ctx.rfFlag == "" {
		// The per-phase decomposition is about how shares move with
		// the replication factor (F4's read-repair growth needs at
		// least RF 3..6); sweep the full range at every profile scale
		// unless -rf narrowed it explicitly.
		to.ReplicationFactors = []int{1, 2, 3, 4, 5, 6}
	}
	res, err := core.RunTraceBreakdown(to)
	if err != nil {
		return err
	}
	// The decomposition is a long narrow table meant for downstream
	// plotting; emit CSV regardless of -csv.
	res.Table().CSV(ctx.w)
	fmt.Fprintln(ctx.w)
	*ctx.findings = append(*ctx.findings, core.CheckTrace(res)...)
	if ctx.traceOut != "" {
		_, spans, err := core.RunTraceSpans(to, core.TraceSpanKeep)
		if err != nil {
			return err
		}
		f, err := os.Create(ctx.traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(ctx.w, "wrote %d spans to %s (chrome://tracing / Perfetto format)\n\n", len(spans), ctx.traceOut)
	}
	return nil
}

func runAblationA1(ctx *runContext) error {
	fig, err := core.AblationReadRepair(ctx.o)
	if err != nil {
		return err
	}
	ctx.render(fig.Table())
	return nil
}

func runAblationA2(ctx *runContext) error {
	fig, err := core.AblationHBaseSyncRepl(ctx.o)
	if err != nil {
		return err
	}
	ctx.render(fig.Table())
	return nil
}

func runAblationA3(ctx *runContext) error {
	fig, err := core.AblationClientThreads(ctx.o, nil, 3000)
	if err != nil {
		return err
	}
	ctx.render(fig.Table())
	return nil
}

func runGeo(ctx *runContext) error {
	res, err := core.RunGeo(ctx.o)
	if err != nil {
		return err
	}
	ctx.render(res.Table())
	*ctx.findings = append(*ctx.findings, core.CheckGeo(ctx.o, res)...)
	return nil
}

func runFailover(ctx *runContext) error {
	fo := core.DefaultFailoverOptions()
	fo.Seed = ctx.seed
	res, err := core.RunFailover(fo)
	if err != nil {
		return err
	}
	ctx.render(res.ThroughputFigure().Table())
	ctx.render(res.Figure().Table())
	return nil
}

// runMegaScale drives the partitioned deployment (DESIGN §14). The cell
// scales with -profile: smoke is the small CI cell, quick a mid-size cell
// that keeps `-experiment all` tolerable, paper the full 512-node
// million-session deployment. -shards and -shard-workers carry over, with
// the shard count clamped to at least 2 so the partitioned engine
// actually runs (a megascale deployment on one member kernel is just a
// very slow sequential simulation).
func runMegaScale(ctx *runContext) error {
	var mo core.MegaScaleOptions
	switch ctx.profile {
	case "smoke":
		mo = core.MegaSmokeOptions()
	case "paper":
		mo = core.DefaultMegaScaleOptions()
	default: // quick
		mo = core.DefaultMegaScaleOptions()
		mo.Nodes = 64
		mo.Sessions = 20_000
		mo.LiveSessions = 256
	}
	mo.Seed = ctx.seed
	mo.Workers = ctx.o.ShardWorkers
	mo.Shards = ctx.o.Shards
	if mo.Shards < 2 {
		mo.Shards = 2
	}
	res, err := core.RunMegaScale(mo)
	if err != nil {
		return err
	}
	ctx.render(res.Table())
	fmt.Fprintf(ctx.w, "megascale: %d shards, %d conservative windows\n\n", res.Shards, res.Windows)
	return nil
}

func runSLA(ctx *runContext) error {
	res, err := core.RunSLASearch(ctx.o, "Cassandra", 3, coreReadMostly, core.SLA{Percentile: 95, Limit: 20 * time.Millisecond}, 6)
	if err != nil {
		return err
	}
	ctx.render(res.Table())
	return nil
}
