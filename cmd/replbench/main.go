// Command replbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	replbench -experiment table1|fig1|fig2|fig3|audit|tracebreak|ablation-a1|ablation-a2|ablation-a3|geo|failover|sla|findings|all \
//	          [-profile smoke|quick|paper] [-short] [-seed N] [-rf 1,2,3] [-parallel N] [-shards N] [-csv] [-o results.txt] [-trace-out trace.json]
//
// Sweeps fan their independent cells out across host CPUs (-parallel bounds
// the worker pool; 0 means one worker per CPU). -shards additionally runs
// each cell's kernel as a sharded group (see DESIGN §10). Every cell is a
// deterministic simulation whose event order is independent of both knobs,
// so the report is bit-identical whatever the parallelism or shard count.
// -seed and -csv apply uniformly to every experiment, including the geo and
// failover extensions.
//
// Each experiment prints the corresponding table or figure series in the
// same rows the paper reports, plus a findings summary comparing the
// reproduction against the paper's qualitative claims.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cloudbench/internal/core"
	"cloudbench/internal/stats"
	"cloudbench/internal/trace"
	"cloudbench/internal/ycsb"
)

// coreReadMostly adapts the read-mostly preset for the SLA search.
func coreReadMostly(records int64) ycsb.Spec { return ycsb.ReadMostly(records) }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "table1, fig1, fig2, fig3, audit, tracebreak, ablation-a1, ablation-a2, ablation-a3, geo, failover, sla, findings, or all")
	profile := fs.String("profile", "quick", "smoke, quick, or paper scale")
	short := fs.Bool("short", false, "shorthand for -profile smoke")
	traceOut := fs.String("trace-out", "", "write Chrome trace-event JSON for one span-retaining tracebreak cell to this file")
	seed := fs.Int64("seed", 1, "simulation seed")
	parallel := fs.Int("parallel", 0, "sweep cells run concurrently (0 = one per CPU); results are bit-identical for every value")
	shards := fs.Int("shards", 0, "kernel execution shards per simulation cell (0/1 = sequential kernel); results are bit-identical for every value")
	rfList := fs.String("rf", "", "comma-separated replication factors (default 1-6)")
	noReadRepair := fs.Bool("no-read-repair", false, "disable Cassandra read repair (ablation A1 inline)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	out := fs.String("o", "", "also write the report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *short {
		*profile = "smoke"
	}
	var o core.Options
	switch *profile {
	case "smoke":
		o = core.SmokeOptions()
	case "quick":
		o = core.QuickOptions()
	case "paper":
		o = core.PaperOptions()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	o.Seed = *seed
	if *parallel < 0 {
		return fmt.Errorf("bad -parallel %d", *parallel)
	}
	o.Parallelism = *parallel
	if *shards < 0 {
		return fmt.Errorf("bad -shards %d", *shards)
	}
	if *shards > 0 {
		o.Shards = *shards
	}
	if *rfList != "" {
		var rfs []int
		for _, part := range strings.Split(*rfList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -rf entry %q", part)
			}
			rfs = append(rfs, n)
		}
		o.ReplicationFactors = rfs
	}
	if *noReadRepair {
		o.ReadRepairChance = 0
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	render := func(t *stats.Table) {
		if *csv {
			t.CSV(w)
		} else {
			t.Render(w)
		}
		fmt.Fprintln(w)
	}

	want := func(name string) bool { return *experiment == name || *experiment == "all" }
	started := time.Now()
	var findings []core.Finding

	if want("table1") {
		if err := core.VerifyTable1(); err != nil {
			return err
		}
		render(core.Table1())
	}
	if want("fig1") {
		res, err := core.RunFig1(o)
		if err != nil {
			return err
		}
		for _, f := range res.Figures() {
			render(f.Table())
		}
		render(res.Table())
		findings = append(findings, core.CheckFig1(res)...)
	}
	if want("fig2") {
		res, err := core.RunFig2(o)
		if err != nil {
			return err
		}
		for _, f := range res.ThroughputFigures() {
			render(f.Table())
		}
		for _, f := range res.LatencyFigures() {
			render(f.Table())
		}
		findings = append(findings, core.CheckFig2(res)...)
	}
	if want("fig3") {
		res, err := core.RunFig3(o)
		if err != nil {
			return err
		}
		for _, f := range res.Figures() {
			render(f.Table())
		}
		findings = append(findings, core.CheckFig3(res)...)
	}
	if want("audit") {
		res, err := core.RunConsistencyAudit(o)
		if err != nil {
			return err
		}
		render(res.Table())
		findings = append(findings, core.CheckAudit(res)...)
	}
	if want("tracebreak") {
		to := o
		if *rfList == "" {
			// The per-phase decomposition is about how shares move with
			// the replication factor (F4's read-repair growth needs at
			// least RF 3..6); sweep the full range at every profile scale
			// unless -rf narrowed it explicitly.
			to.ReplicationFactors = []int{1, 2, 3, 4, 5, 6}
		}
		res, err := core.RunTraceBreakdown(to)
		if err != nil {
			return err
		}
		// The decomposition is a long narrow table meant for downstream
		// plotting; emit CSV regardless of -csv.
		res.Table().CSV(w)
		fmt.Fprintln(w)
		findings = append(findings, core.CheckTrace(res)...)
		if *traceOut != "" {
			_, spans, err := core.RunTraceSpans(to, core.TraceSpanKeep)
			if err != nil {
				return err
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := trace.WriteChrome(f, spans); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %d spans to %s (chrome://tracing / Perfetto format)\n\n", len(spans), *traceOut)
		}
	}
	if want("ablation-a1") {
		fig, err := core.AblationReadRepair(o)
		if err != nil {
			return err
		}
		render(fig.Table())
	}
	if want("ablation-a2") {
		fig, err := core.AblationHBaseSyncRepl(o)
		if err != nil {
			return err
		}
		render(fig.Table())
	}
	if want("ablation-a3") {
		fig, err := core.AblationClientThreads(o, nil, 3000)
		if err != nil {
			return err
		}
		render(fig.Table())
	}
	if want("geo") {
		g := core.DefaultGeoOptions()
		g.Seed = *seed
		res, err := core.RunGeo(g)
		if err != nil {
			return err
		}
		render(res.Table())
	}
	if want("failover") {
		fo := core.DefaultFailoverOptions()
		fo.Seed = *seed
		res, err := core.RunFailover(fo)
		if err != nil {
			return err
		}
		render(res.ThroughputFigure().Table())
		render(res.Figure().Table())
	}
	if want("sla") {
		res, err := core.RunSLASearch(o, "Cassandra", 3, coreReadMostly, core.SLA{Percentile: 95, Limit: 20 * time.Millisecond}, 6)
		if err != nil {
			return err
		}
		render(res.Table())
	}
	if len(findings) > 0 || *experiment == "findings" {
		fmt.Fprintln(w, "Findings versus the paper's qualitative claims:")
		for _, f := range findings {
			fmt.Fprintln(w, " ", f)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "done in %v (wall clock)\n", time.Since(started).Round(time.Second))
	return nil
}
