package main

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cloudbench/internal/core"
	"cloudbench/internal/trace"
)

// capture runs the CLI and returns its report with the trailing
// wall-clock "done in ..." line stripped — the only line allowed to
// differ between runs.
func capture(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("replbench %v: %v", args, err)
	}
	out := buf.String()
	i := strings.LastIndex(out, "done in ")
	if i < 0 {
		t.Fatalf("replbench %v: missing trailer in output:\n%s", args, out)
	}
	return out[:i]
}

// TestSweepBitIdentical is the determinism regression test: a same-seed
// sweep must produce byte-identical CSV whatever the worker-pool size.
// This is the invariant the detwalk and seedflow analyzers exist to
// protect — any wall-clock read, global rand call, or map-order leak in
// a sim-reachable package eventually shows up here as a diff.
func TestSweepBitIdentical(t *testing.T) {
	for _, experiment := range []string{"fig1", "audit", "spectrum"} {
		t.Run(experiment, func(t *testing.T) {
			base := []string{"-experiment", experiment, "-profile", "smoke", "-csv", "-seed", "42"}
			serial := capture(t, append(base, "-parallel", "1")...)
			wide := capture(t, append(base, "-parallel", "8")...)
			if serial != wide {
				t.Errorf("-parallel 1 and -parallel 8 reports differ:\n%s", firstDiff(serial, wide))
			}
			repeat := capture(t, append(base, "-parallel", "8")...)
			if wide != repeat {
				t.Errorf("two -parallel 8 runs with the same seed differ:\n%s", firstDiff(wide, repeat))
			}
		})
	}
}

// TestGeoSweepBitIdentical extends the determinism gate to the geo
// subsystem: the multi-DC grid — WAN-link jitter streams, per-DC quorum
// fan-out, the DC-partition fault cells, and the adaptive controller's
// probability-driven decisions — must produce byte-identical CSV across
// worker-pool sizes AND across kernel shard counts (the 2-DC cells align
// DC blocks with shard boundaries, so the WAN lookahead path is on trial
// too).
func TestGeoSweepBitIdentical(t *testing.T) {
	base := []string{"-experiment", "geo", "-profile", "smoke", "-csv", "-seed", "42"}
	serial := capture(t, append(base, "-parallel", "1")...)
	wide := capture(t, append(base, "-parallel", "8")...)
	if serial != wide {
		t.Errorf("-parallel 1 and -parallel 8 geo reports differ:\n%s", firstDiff(serial, wide))
	}
	seq := capture(t, append(base, "-shards", "1")...)
	sharded := capture(t, append(base, "-shards", "4")...)
	if seq != sharded {
		t.Errorf("-shards 1 and -shards 4 geo reports differ:\n%s", firstDiff(seq, sharded))
	}
	if serial != seq {
		t.Errorf("-parallel and -shards baselines differ:\n%s", firstDiff(serial, seq))
	}
}

// TestTraceBitIdentical extends the invariant to the tracing subsystem:
// the per-phase decomposition must be byte-identical across worker-pool
// sizes, and the raw span stream — IDs included, which are drawn from the
// per-proc seeded RNGs — must be identical across same-seed runs.
func TestTraceBitIdentical(t *testing.T) {
	base := []string{"-experiment", "tracebreak", "-profile", "smoke", "-seed", "42", "-rf", "1,3"}
	serial := capture(t, append(base, "-parallel", "1")...)
	wide := capture(t, append(base, "-parallel", "8")...)
	if serial != wide {
		t.Errorf("-parallel 1 and -parallel 8 tracebreak reports differ:\n%s", firstDiff(serial, wide))
	}

	o := core.SmokeOptions()
	o.Seed = 42
	o.ReplicationFactors = []int{3}
	_, a, err := core.RunTraceSpans(o, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := core.RunTraceSpans(o, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("span-retaining cell kept no spans")
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i < len(b) && a[i] != b[i] {
				t.Fatalf("span %d differs:\n  a: %+v\n  b: %+v", i, a[i], b[i])
			}
		}
		t.Fatalf("span streams differ in length: %d vs %d", len(a), len(b))
	}
}

// TestShardedSweepBitIdentical is the acceptance gate for the sharded
// kernel: every experiment family must produce byte-identical reports on a
// 4-shard kernel group and on the plain sequential kernel. The benchmark
// deployments live entirely on the group's home shard (same seed, same
// event stream), so any diff here means the window engine reordered,
// duplicated, or dropped events.
func TestShardedSweepBitIdentical(t *testing.T) {
	experiments := []string{"fig1", "audit", "spectrum", "tracebreak"}
	if !testing.Short() {
		experiments = append(experiments, "fig2", "fig3")
	}
	for _, experiment := range experiments {
		t.Run(experiment, func(t *testing.T) {
			base := []string{"-experiment", experiment, "-profile", "smoke", "-csv", "-seed", "42", "-rf", "1,3"}
			seq := capture(t, append(base, "-shards", "1")...)
			sharded := capture(t, append(base, "-shards", "4")...)
			if seq != sharded {
				t.Errorf("-shards 1 and -shards 4 reports differ:\n%s", firstDiff(seq, sharded))
			}
		})
	}
}

// TestPinnedWorkersMatchSpawnPerWindow is the engine-swap differential
// gate at the experiment level: on 4-shard groups, the pinned-worker
// barrier must produce reports byte-identical to the legacy
// goroutine-per-window executor (CLOUDBENCH_SPAWN_WINDOWS=1), and the
// pinned engine must be worker-count-independent — for the fig1, audit,
// and geo sweeps. Adaptive windows are on throughout (the default), so
// the widened barriers are on trial too.
func TestPinnedWorkersMatchSpawnPerWindow(t *testing.T) {
	for _, experiment := range []string{"fig1", "audit", "geo"} {
		t.Run(experiment, func(t *testing.T) {
			base := []string{"-experiment", experiment, "-profile", "smoke", "-csv", "-seed", "42", "-shards", "4"}
			if experiment != "geo" {
				base = append(base, "-rf", "1,3")
			}
			t.Setenv("CLOUDBENCH_SPAWN_WINDOWS", "")
			pinned := capture(t, append(base, "-shard-workers", "4")...)
			oneWorker := capture(t, append(base, "-shard-workers", "1")...)
			if pinned != oneWorker {
				t.Errorf("pinned engine differs across worker counts:\n%s", firstDiff(pinned, oneWorker))
			}
			t.Setenv("CLOUDBENCH_SPAWN_WINDOWS", "1")
			spawn := capture(t, append(base, "-shard-workers", "4")...)
			if pinned != spawn {
				t.Errorf("pinned and spawn-per-window engines differ:\n%s", firstDiff(pinned, spawn))
			}
		})
	}
}

// TestShardedTraceSpansBitIdentical extends the sharded gate to the raw
// span stream: IDs, timestamps, and phase boundaries must survive the
// window engine untouched.
func TestShardedTraceSpansBitIdentical(t *testing.T) {
	run := func(shards int) []trace.Span {
		o := core.SmokeOptions()
		o.Seed = 42
		o.Shards = shards
		o.ReplicationFactors = []int{3}
		_, spans, err := core.RunTraceSpans(o, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		return spans
	}
	a, b := run(1), run(4)
	if len(a) == 0 {
		t.Fatal("span-retaining cell kept no spans")
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i < len(b) && a[i] != b[i] {
				t.Fatalf("span %d differs between -shards 1 and -shards 4:\n  a: %+v\n  b: %+v", i, a[i], b[i])
			}
		}
		t.Fatalf("span streams differ in length: %d vs %d", len(a), len(b))
	}
}

// firstDiff renders the first differing line of two reports.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
