package main

import (
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "read-mostly", "Online shopping", "zipfian", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1CSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "table1", "-csv"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "workload,typical-usage") {
		t.Errorf("csv header missing:\n%s", b.String())
	}
}

func TestRunAuditSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "audit", "-profile", "smoke"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Consistency audit", "stale-%", "hint-applies", "FA1", "FA2", "FA3", "FA4", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "✗") {
		t.Errorf("audit finding failed at smoke scale:\n%s", out)
	}
}

func TestRunAuditSmokeCSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "audit", "-profile", "smoke", "-csv", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "db,workload,level,rf,fault,ops/sec") {
		t.Errorf("csv header missing:\n%s", b.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "table1", "-profile", "bogus"}, &b); err == nil {
		t.Error("bad profile accepted")
	}
	if err := run([]string{"-experiment", "table1", "-rf", "1,x"}, &b); err == nil {
		t.Error("bad rf list accepted")
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-experiment", "table1", "-o", dir + "/r.txt"}, &b); err != nil {
		t.Fatal(err)
	}
}
