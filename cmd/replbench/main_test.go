package main

import (
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "read-mostly", "Online shopping", "zipfian", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1CSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "table1", "-csv"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "workload,typical-usage") {
		t.Errorf("csv header missing:\n%s", b.String())
	}
}

func TestRunAuditSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "audit", "-profile", "smoke"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Consistency audit", "stale-%", "hint-applies", "FA1", "FA2", "FA3", "FA4", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "✗") {
		t.Errorf("audit finding failed at smoke scale:\n%s", out)
	}
}

func TestRunAuditSmokeCSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "audit", "-profile", "smoke", "-csv", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "db,workload,level,rf,fault,ops/sec") {
		t.Errorf("csv header missing:\n%s", b.String())
	}
}

func TestRunSpectrumSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "spectrum", "-profile", "smoke"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// One report carries all three backends side by side, plus the four
	// spectrum findings.
	for _, want := range []string{"Replication spectrum", "HBase", "Cassandra", "ObjStore",
		"async/read-one", "async/read-quorum", "repl-interval",
		"FS1", "FS2", "FS3", "FS4", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "✗") {
		t.Errorf("spectrum finding failed at smoke scale:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "table1", "-profile", "bogus"}, &b); err == nil {
		t.Error("bad profile accepted")
	}
	if err := run([]string{"-experiment", "table1", "-rf", "1,x"}, &b); err == nil {
		t.Error("bad rf list accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-experiment", "bogus"}, &b)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The error lists the registry so the valid names never drift from the
	// dispatch.
	for _, want := range []string{"bogus", "table1", "spectrum", "findings", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-experiment error missing %q: %v", want, err)
		}
	}
}

func TestUsageListsRegistry(t *testing.T) {
	names := experimentNames()
	for _, e := range experiments() {
		if !strings.Contains(names, e.name) {
			t.Errorf("usage string missing experiment %q", e.name)
		}
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-experiment", "table1", "-o", dir + "/r.txt"}, &b); err != nil {
		t.Fatal(err)
	}
}
