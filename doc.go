// Package cloudbench reproduces "Benchmarking Replication and Consistency
// Strategies in Cloud Serving Databases: HBase and Cassandra" (Wang, Li,
// Zhang, Zhou — BPOE 2014, LNCS 8807) as a self-contained Go system.
//
// The repository contains, from the ground up:
//
//   - internal/sim — a deterministic discrete-event simulation kernel;
//   - internal/cluster — the paper's 16-machine single-rack testbed (CPU,
//     disk, NIC, JVM stop-the-world pauses);
//   - internal/storage — a log-structured storage engine (WAL with group
//     commit, skiplist memtable, SSTables with bloom filters and block
//     cache, size-tiered compaction);
//   - internal/hdfs — a simulated HDFS with pipelined block replication;
//   - internal/hbase — an HBase-like database (master, region servers,
//     strong single-owner consistency, in-memory replication);
//   - internal/cassandra — a Cassandra-like database (token ring,
//     coordinators, tunable consistency, read repair, hinted handoff);
//   - internal/ycsb — a YCSB-core reimplementation (generators, workload
//     mixer, closed-loop paced client threads);
//   - internal/core — the paper's methodology: the micro benchmark for
//     replication (Fig. 1), the stress benchmark for replication (Fig. 2),
//     the stress benchmark for consistency (Fig. 3), Table 1, and the
//     ablations documented in DESIGN.md.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-versus-measured results.
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
//
// or, for the CLI harness:
//
//	go run ./cmd/replbench -experiment all
package cloudbench
